//! Subcommand implementations.

use crate::args::Args;
use pufatt::adversary::build_malicious_prover;
use pufatt::enroll::EnrolledDevice;
use pufatt::protocol::{provision, puf_limited_clock, run_session, AttestationRequest, Channel};
use pufatt::VerifierPuf;
use pufatt_alupuf::device::{AdderKind, AluPufConfig, AluPufDesign, PufInstance};
use pufatt_alupuf::emulate::DelayTable;
use pufatt_faults::{
    apply_device_faults, run_chaos_session, run_noise_sweep, FaultPlan, LossyChannel, RetryPolicy, SweepConfig,
};
use pufatt_fleet::{run_campaign, CampaignConfig, ChaosConfig, LifecyclePolicy, RunningCampaign};
use pufatt_silicon::env::Environment;
use pufatt_silicon::variation::ChipSampler;
use pufatt_swatt::checksum::SwattParams;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn profile_config(name: &str) -> Result<AluPufConfig, String> {
    match name {
        "paper32" => Ok(AluPufConfig::paper_32bit()),
        "fpga16" => Ok(AluPufConfig::fpga_16bit()),
        other => Err(format!("unknown profile `{other}` (expected paper32 or fpga16)")),
    }
}

fn enroll_from(args: &Args) -> Result<EnrolledDevice, String> {
    let config = profile_config(args.get_or("profile", "paper32"))?;
    let fab_seed = args.num_or("fab-seed", 42u64)?;
    pufatt::enroll::enroll(config, fab_seed, 0).map_err(|e| e.to_string())
}

/// `pufatt enroll`: manufacture + export the delay table.
pub fn enroll(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["profile", "fab-seed", "out"], &[])?;
    let enrolled = enroll_from(&args)?;
    let out = args.get_or("out", "device.puft");
    let table = DelayTable::extract(enrolled.design(), enrolled.chip(), Environment::nominal());
    let bytes = table.to_bytes();
    std::fs::write(out, &bytes).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "enrolled {} profile, fab-seed {}: {} gates, {} delay entries -> {out} ({} bytes)",
        args.get_or("profile", "paper32"),
        args.get_or("fab-seed", "42"),
        enrolled.design().netlist().gate_count(),
        table.len(),
        bytes.len()
    );
    println!("keep this file secret: whoever holds it can emulate the PUF.");
    Ok(())
}

/// `pufatt attest`: one full Fig.-2 session, optionally driven through a
/// fault plan and a lossy channel (`--fault-plan`, `--channel`).
pub fn attest(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(
        argv,
        &[
            "table",
            "profile",
            "fab-seed",
            "rounds",
            "overclock",
            "fault-plan",
            "channel",
            "retries",
            "seed",
        ],
        &["malware"],
    )?;
    let enrolled = enroll_from(&args)?;
    let table_path = args.require("table")?;
    let bytes = std::fs::read(table_path).map_err(|e| format!("reading {table_path}: {e}"))?;
    let table = DelayTable::from_bytes(&bytes)?;
    let verifier_puf = VerifierPuf::new(enrolled.design().clone(), table).map_err(|e| e.to_string())?;

    let rounds: u32 = args.num_or("rounds", 2048)?;
    let params = SwattParams { region_bits: 10, rounds, puf_interval: 32 };
    let clock = puf_limited_clock(&enrolled, 1.10, 128, 1);
    let channel = Channel::sensor_link();
    let (mut prover, mut verifier, honest_cycles) =
        provision(&enrolled, params, clock, channel, 2, 1.10).map_err(|e| e.to_string())?;
    // The verifier uses the *imported* table, not the in-process enrollment
    // (exercising the export/import path end to end).
    verifier = pufatt::Verifier::new(
        prover.expected_region(),
        verifier_puf,
        params,
        prover.layout(),
        channel,
        clock,
        verifier.delta_s,
    );
    println!(
        "provisioned: F_base {:.0} MHz, honest {} cycles, delta {:.3} ms",
        clock.frequency_mhz,
        honest_cycles,
        verifier.delta_s * 1e3
    );

    let seed: u64 = args.num_or("seed", 0xC11)?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    let overclock: f64 = args.num_or("overclock", 0.0)?;
    let plan_spec = args.get_or("fault-plan", "");
    let channel_spec = args.get_or("channel", "");
    let verdict = if overclock > 0.0 {
        let region = prover.expected_region();
        let mut attacker = build_malicious_prover(enrolled.device_handle(3), params, &region, clock, overclock)
            .map_err(|e| e.to_string())?;
        println!("running the memory-copy attack at {overclock}x overclock...");
        let request = AttestationRequest::random(&mut rng);
        run_session(&mut attacker, &verifier, request).map_err(|e| e.to_string())?.0
    } else {
        if args.has("malware") {
            let at = (prover.layout().x0_cell - 8) as usize;
            prover.memory_mut()[at] = 0xEB1B_EB1B;
            println!("infected attested region at word {at}");
        }
        if plan_spec.is_empty() && channel_spec.is_empty() {
            let request = AttestationRequest::random(&mut rng);
            run_session(&mut prover, &verifier, request).map_err(|e| e.to_string())?.0
        } else {
            let plan = FaultPlan::parse(plan_spec, seed)?;
            apply_device_faults(&mut prover, &plan);
            let lossy = if channel_spec.is_empty() {
                LossyChannel::from_plan(verifier.channel(), &plan)
            } else {
                LossyChannel::parse(channel_spec, &plan)?
            };
            let policy = RetryPolicy::for_verifier(&verifier, args.num_or("retries", 3)?);
            let report = run_chaos_session(&mut prover, &verifier, &lossy, &plan, &policy, &mut rng);
            println!(
                "chaos: plan [{plan}], {} attempt(s), {:.3} ms elapsed, {} message(s) dropped \
                 ({} request / {} report), {} duplicated, {} reordered",
                report.attempts,
                report.elapsed_s * 1e3,
                report.messages_dropped(),
                report.requests_dropped,
                report.reports_dropped,
                report.duplicates,
                report.reordered
            );
            report.result.map_err(|e| e.to_string())?
        }
    };
    println!("verdict: {verdict}");
    Ok(())
}

/// `pufatt noise-sweep`: the §4.1 false-negative-rate experiment — error
/// weight vs. extractor recovery and session FNR, with the boundary at
/// `t = 7`.
pub fn noise_sweep(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["seed", "trials", "sessions", "max-weight"], &[])?;
    let defaults = SweepConfig::default();
    let config = SweepConfig {
        seed: args.num_or("seed", defaults.seed)?,
        extractor_trials: args.num_or("trials", defaults.extractor_trials)?,
        sessions_per_weight: args.num_or("sessions", defaults.sessions_per_weight)?,
        max_weight: args.num_or("max-weight", defaults.max_weight)?,
    };
    let sweep = run_noise_sweep(&config).map_err(|e| e.to_string())?;
    print!("{sweep}");
    println!(
        "boundary {}: full recovery for weight <= {}, rejection beyond",
        if sweep.boundary_holds() { "holds" } else { "VIOLATED" },
        sweep.t
    );
    Ok(())
}

/// Default worker count for batched evaluation: the machine's parallelism.
fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// `pufatt characterize`: quality metrics over a chip batch, evaluated via
/// the parallel batch engine (`--threads`, default: all cores). Results are
/// deterministic in `--seed` and identical for any thread count.
pub fn characterize(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["profile", "chips", "challenges", "threads", "seed"], &[])?;
    let config = profile_config(args.get_or("profile", "paper32"))?;
    let chips_n: usize = args.num_or("chips", 4)?;
    let challenges_n: usize = args.num_or("challenges", 300)?;
    let threads: usize = args.num_or("threads", default_threads())?;
    let seed: u64 = args.num_or("seed", 0xC4A2)?;
    if chips_n < 2 {
        return Err("need at least 2 chips for inter-chip statistics".into());
    }
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    let design = AluPufDesign::new(config);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let chips = design.fabricate_many(&ChipSampler::new(), chips_n, &mut rng);
    let instances: Vec<PufInstance<'_>> = chips
        .iter()
        .map(|c| PufInstance::new(&design, c, Environment::nominal()))
        .collect();

    println!("batch evaluation: {threads} threads (default: available parallelism)");
    let report = pufatt_alupuf::quality::measure_quality_batched(&design, &chips, challenges_n, seed, threads);
    println!("{report}");
    println!(
        "  T_ALU: {:.0} ps, min reliable cycle: {:.0} ps",
        instances[0].alu_critical_path_ps(),
        instances[0].min_reliable_cycle_ps()
    );
    Ok(())
}

/// `pufatt dot`: Graphviz export of the racing-adder netlist.
pub fn dot(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["width", "out", "chip-seed"], &[])?;
    let width: usize = args.num_or("width", 8)?;
    let out = args.get_or("out", "alupuf.dot");
    let mut config = AluPufConfig::paper_32bit();
    config.width = width;
    let design = AluPufDesign::new(config);
    let text = match args.num_or("chip-seed", 0u64)? {
        0 => pufatt_silicon::dot::to_dot(design.netlist()),
        seed => {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let chip = design.fabricate(&ChipSampler::new(), &mut rng);
            let delays = design.effective_delays_ps(chip.silicon(), &Environment::nominal());
            pufatt_silicon::dot::to_dot_with_delays(design.netlist(), &delays)
        }
    };
    std::fs::write(out, &text).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {} gates to {out} (render with: dot -Tsvg {out} -o alupuf.svg)",
        design.netlist().gate_count()
    );
    Ok(())
}

/// `pufatt profile`: cycle attribution of a built-in PE32 program.
///
/// Accepts `--threads` for interface uniformity with the other commands,
/// but cycle-accurate profiling of one CPU is inherently serial; the flag
/// is validated and reported, never fanned out.
pub fn profile(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["program", "threads"], &[])?;
    let threads: usize = args.num_or("threads", default_threads())?;
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    println!("threads: {threads} resolved (cycle-accurate profiling runs on one core)");
    let source = match args.get_or("program", "fibonacci") {
        "fibonacci" => pufatt_pe32::programs::fibonacci(),
        "memcpy" => pufatt_pe32::programs::memcpy(),
        "checksum" => pufatt_pe32::programs::block_checksum(),
        "sort" => pufatt_pe32::programs::bubble_sort(),
        other => return Err(format!("unknown program `{other}`")),
    };
    let program = pufatt_pe32::asm::assemble(source).map_err(|e| e.to_string())?;
    let mut cpu = pufatt_pe32::cpu::Cpu::new(1024);
    cpu.load_program(&program.image);
    let profile = pufatt_pe32::trace::run_profiled(&mut cpu, 10_000_000).map_err(|e| e.to_string())?;
    print!("{profile}");
    println!("hottest program counters:");
    for (pc, count) in profile.hottest(5) {
        println!("  pc {pc:>4}: {count} executions");
    }
    Ok(())
}

/// `pufatt fleet`: a concurrent fleet-scale attestation campaign.
/// Campaign flags shared by `fleet` and `serve` (the server fronts the
/// same engine, so it takes the same knobs).
pub(crate) const CAMPAIGN_VALUE_KEYS: &[&str] = &[
    "devices",
    "workers",
    "threads",
    "shards",
    "sessions",
    "seed",
    "tamper",
    "profile",
    "rounds",
    "region-bits",
    "retries",
    "timeout-ms",
    "history",
    "fault-plan",
    "flaky",
    "commit-interval",
];

/// Campaign boolean flags shared by `fleet` and `serve`.
///
/// `--fail-fast` flips the storage-failure policy: instead of degrading a
/// sick shard to read-only refusals and finishing the healthy rest of the
/// fleet, the campaign stops at the first storage failure with a typed
/// error.
pub(crate) const CAMPAIGN_BOOL_KEYS: &[&str] = &["fail-fast"];

/// Builds a [`CampaignConfig`] from parsed campaign flags (see
/// [`CAMPAIGN_VALUE_KEYS`]).
pub(crate) fn campaign_config(args: &Args) -> Result<CampaignConfig, String> {
    let defaults = CampaignConfig::default();
    let seed: u64 = args.num_or("seed", defaults.seed)?;
    let plan_spec = args.get_or("fault-plan", "");
    let chaos = if plan_spec.is_empty() {
        None
    } else {
        let flaky_fraction: f64 = args.num_or("flaky", 0.25)?;
        if !(0.0..=1.0).contains(&flaky_fraction) {
            return Err(format!("--flaky: fraction {flaky_fraction} outside [0, 1]"));
        }
        Some(ChaosConfig { plan: FaultPlan::parse(plan_spec, seed)?, flaky_fraction })
    };
    Ok(CampaignConfig {
        devices: args.num_or("devices", defaults.devices)?,
        // `--threads` is an alias for `--workers` (the batch-evaluation
        // flag name used by `characterize`); `--threads` wins if both are
        // given. Unspecified, both default to the machine's parallelism.
        workers: args.num_or("threads", args.num_or("workers", default_threads())?)?,
        shards: args.num_or("shards", defaults.shards)?,
        sessions_per_device: args.num_or("sessions", defaults.sessions_per_device)?,
        seed,
        tamper_fraction: args.num_or("tamper", defaults.tamper_fraction)?,
        puf: profile_config(args.get_or("profile", "paper32"))?,
        params: SwattParams {
            region_bits: args.num_or("region-bits", defaults.params.region_bits)?,
            rounds: args.num_or("rounds", defaults.params.rounds)?,
            puf_interval: defaults.params.puf_interval,
        },
        policy: LifecyclePolicy {
            max_attempts: args.num_or("retries", defaults.policy.max_attempts)?,
            ..defaults.policy
        },
        timeout_s: args.num_or("timeout-ms", defaults.timeout_s * 1e3)? * 1e-3,
        history_capacity: args.num_or("history", defaults.history_capacity)?,
        queue_depth: defaults.queue_depth,
        commit_interval_s: commit_interval_s(args)?,
        fail_fast: args.has("fail-fast"),
        chaos,
    })
}

/// Parses `--commit-interval` (milliseconds) into seconds. Unspecified, a
/// journaled run (`--state-dir`) group-commits every 5 ms and an in-memory
/// run has nothing to commit; `--commit-interval 0` forces an fsync per
/// record even when journaling.
fn commit_interval_s(args: &Args) -> Result<f64, String> {
    let default_ms = if args.get_or("state-dir", "").is_empty() { 0.0 } else { 5.0 };
    let ms: f64 = args.num_or("commit-interval", default_ms)?;
    if !(ms >= 0.0 && ms.is_finite()) {
        return Err(format!("--commit-interval: {ms} ms is not a valid latency bound"));
    }
    Ok(ms * 1e-3)
}

/// Prints the standard campaign header shared by `fleet` and `serve`.
pub(crate) fn print_campaign_banner(cfg: &CampaignConfig) {
    println!(
        "campaign: {} devices x {} sessions, {} workers, {} shards, seed {:#x}, tamper {:.1}%",
        cfg.devices,
        cfg.sessions_per_device,
        cfg.workers,
        cfg.shards,
        cfg.seed,
        cfg.tamper_fraction * 100.0
    );
    if let Some(chaos) = &cfg.chaos {
        println!("chaos: plan [{}], {:.1}% of the fleet flaky", chaos.plan, chaos.flaky_fraction * 100.0);
    }
    if cfg.fail_fast {
        println!("storage policy: fail-fast (the first storage failure stops the campaign)");
    }
}

pub fn fleet(argv: &[String]) -> Result<(), String> {
    let mut value_keys = CAMPAIGN_VALUE_KEYS.to_vec();
    value_keys.extend_from_slice(&["state-dir", "online-enroll"]);
    let mut bool_keys = CAMPAIGN_BOOL_KEYS.to_vec();
    bool_keys.push("resume");
    let args = Args::parse(argv, &value_keys, &bool_keys)?;
    let cfg = campaign_config(&args)?;
    print_campaign_banner(&cfg);
    let state_dir = args.get_or("state-dir", "");
    let resume = args.has("resume");
    if resume && state_dir.is_empty() {
        return Err("--resume requires --state-dir".into());
    }
    let online: u32 = args.num_or("online-enroll", 0u32)?;
    if online > 0 && state_dir.is_empty() {
        return Err("--online-enroll requires --state-dir (admissions must be journaled)".into());
    }
    let report = if state_dir.is_empty() {
        run_campaign(&cfg)
    } else {
        let dir = std::path::Path::new(state_dir);
        println!(
            "state: journaling to {} ({}), group commit every {:.1} ms",
            dir.display(),
            if resume { "resume" } else { "fresh" },
            cfg.commit_interval_s * 1e3
        );
        pufatt_fleet::open_state_dir(dir, cfg.history_capacity).and_then(|store| {
            let campaign = RunningCampaign::launch(&cfg, &store, resume)?;
            // Admit extra devices while the configured fleet attests —
            // the same ids on a resume are an idempotent no-op.
            let first = cfg.devices as u32;
            for id in first..first.saturating_add(online) {
                campaign.enroll(id)?;
            }
            if online > 0 {
                println!("admitted {online} device(s) online (ids {first}..{})", first + online);
            }
            let report = campaign.finish()?;
            println!("store: {}", store.stats());
            Ok(report)
        })
    }
    .map_err(|e| e.to_string())?;
    print!("{}", report.snapshot);
    println!(
        "wall time {:.2} s, {:.0} sessions/s, {} panicked jobs",
        report.wall_time.as_secs_f64(),
        report.sessions_per_second(),
        report.panicked_jobs
    );
    Ok(())
}

/// `pufatt analyze`: run the five static-analysis passes over the shipped
/// designs, generated SWATT programs and protocol/ECC/concurrency sources.
///
/// `--deny` exits nonzero on any finding; `--deny conc,dur` restricts the
/// gate to lint-code prefixes (case-insensitive). `--json` emits the
/// machine-readable report CI uploads as an artifact.
pub fn analyze(argv: &[String]) -> Result<(), String> {
    use pufatt_analyze::program::{verify_program, ProgramSpec};
    use pufatt_analyze::{circuit, conc, dur, taint, LintId, Report};
    use pufatt_swatt::codegen::{generate, CodegenOptions};

    // `--deny` optionally takes a comma-separated category list, so it is
    // neither a pure flag nor a pure value key: peel it off by hand.
    let mut filtered: Vec<String> = Vec::new();
    let mut deny: Option<Vec<String>> = None;
    let mut it = argv.iter().peekable();
    while let Some(a) = it.next() {
        if a == "--deny" {
            let mut cats = Vec::new();
            if let Some(v) = it.peek() {
                if !v.starts_with("--") {
                    cats = v
                        .split(',')
                        .map(|c| c.trim().to_lowercase())
                        .filter(|c| !c.is_empty())
                        .collect();
                    it.next();
                }
            }
            deny = Some(cats);
        } else {
            filtered.push(a.clone());
        }
    }
    let args = Args::parse(&filtered, &["src-root"], &["json", "lints"])?;
    if args.has("lints") {
        for lint in LintId::ALL {
            println!("{} [{}] {}", lint.code(), lint.severity(), lint.description());
        }
        return Ok(());
    }

    let json = args.has("json");
    // With `--json` the report itself owns stdout (CI redirects it into
    // an artifact), so per-pass progress moves to stderr.
    macro_rules! progress {
        ($($t:tt)*) => {
            if json { eprintln!($($t)*) } else { println!($($t)*) }
        };
    }

    let mut report = Report::new();

    // Pass 1: every shipped design point (both profiles, every adder
    // microarchitecture the ablation bench exercises).
    let mut designs = vec![
        ("paper32", AluPufConfig::paper_32bit()),
        ("fpga16", AluPufConfig::fpga_16bit()),
    ];
    for (name, adder) in [
        ("paper32/lookahead", AdderKind::CarryLookahead),
        ("paper32/select", AdderKind::CarrySelect),
    ] {
        let mut config = AluPufConfig::paper_32bit();
        config.adder = adder;
        designs.push((name, config));
    }
    for (name, config) in &designs {
        let design = AluPufDesign::new(config.clone());
        let findings = circuit::verify_alu_puf(*name, &design);
        progress!("netlist {name}: {} gate(s), {} finding(s)", design.netlist().gate_count(), findings.len());
        report.extend(findings);
    }

    // Pass 3: honest checksum programs at shipped parameter points.
    for params in [
        SwattParams { region_bits: 9, rounds: 512, puf_interval: 0 },
        SwattParams { region_bits: 10, rounds: 2048, puf_interval: 32 },
        SwattParams { region_bits: 8, rounds: 192, puf_interval: 32 },
    ] {
        let name = format!("swatt/r{}b{}p{}", params.rounds, params.region_bits, params.puf_interval);
        let generated = generate(&params, &CodegenOptions::default());
        let program = pufatt_pe32::asm::assemble(&generated.source).map_err(|e| format!("{name}: {e}"))?;
        let spec = ProgramSpec::from_generated(&*name, &generated, &params, &program);
        let findings = verify_program(&spec);
        progress!("program {name}: {} word(s), {} finding(s)", spec.code_words, findings.len());
        report.extend(findings);
    }

    // Pass 2: secret-taint lint over the protocol, ECC, durable-store, and
    // network-transport sources (neither store records, error payloads, nor
    // wire messages may ever carry raw responses or helper data).
    let src_root = args.get_or("src-root", ".");
    let mut roots = Vec::new();
    for rel in [
        "crates/core/src",
        "crates/ecc/src",
        "crates/store/src",
        "crates/transport/src",
    ] {
        let path = std::path::Path::new(src_root).join(rel);
        if path.is_dir() {
            roots.push(path);
        } else {
            progress!("taint: skipping missing {} (set --src-root to the repo root)", path.display());
        }
    }
    if !roots.is_empty() {
        let findings = taint::scan_paths(&roots).map_err(|e| format!("taint scan: {e}"))?;
        progress!("taint: {} file root(s), {} finding(s)", roots.len(), findings.len());
        report.extend(findings);
    }

    // Pass 4: concurrency verifier (lock-order graph, blocking ops under
    // locks, raw locks, condvar loops, detached threads) over the four
    // crates that share the fleet's lock classes.
    let mut conc_roots = Vec::new();
    for rel in [
        "crates/core/src",
        "crates/store/src",
        "crates/transport/src",
        "crates/fleet/src",
    ] {
        let path = std::path::Path::new(src_root).join(rel);
        if path.is_dir() {
            conc_roots.push(path);
        } else {
            progress!("conc: skipping missing {} (set --src-root to the repo root)", path.display());
        }
    }
    if !conc_roots.is_empty() {
        let findings = conc::scan_paths(&conc_roots).map_err(|e| format!("conc scan: {e}"))?;
        progress!("conc: {} file root(s), {} finding(s)", conc_roots.len(), findings.len());
        report.extend(findings);
    }

    // Pass 5: durability-ordering verifier over the store and the fleet's
    // durable campaign layer.
    let mut dur_roots = Vec::new();
    for rel in ["crates/store/src", "crates/fleet/src"] {
        let path = std::path::Path::new(src_root).join(rel);
        if path.is_dir() {
            dur_roots.push(path);
        } else {
            progress!("dur: skipping missing {} (set --src-root to the repo root)", path.display());
        }
    }
    if !dur_roots.is_empty() {
        let findings = dur::scan_paths(&dur_roots).map_err(|e| format!("dur scan: {e}"))?;
        progress!("dur: {} file root(s), {} finding(s)", dur_roots.len(), findings.len());
        report.extend(findings);
    }

    if json {
        println!("{}", report.to_json());
    }
    match deny {
        Some(cats) if !cats.is_empty() => {
            let mut gated = Report::new();
            gated.extend(
                report
                    .diagnostics
                    .iter()
                    .filter(|d| cats.iter().any(|c| d.lint.code().to_lowercase().starts_with(c.as_str())))
                    .cloned()
                    .collect(),
            );
            gated.deny()?;
            println!("analyze: clean (deny mode, categories: {})", cats.join(","));
        }
        Some(_) => {
            report.deny()?;
            println!("analyze: clean (deny mode)");
        }
        None => {
            if !args.has("json") {
                println!("{report}");
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn profile_config_names() {
        assert_eq!(profile_config("paper32").unwrap().width, 32);
        assert_eq!(profile_config("fpga16").unwrap().width, 16);
        assert!(profile_config("nope").is_err());
    }

    #[test]
    fn enroll_and_attest_round_trip() {
        let dir = std::env::temp_dir().join(format!("pufatt-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let table = dir.join("dev.puft");
        let table_s = table.to_str().unwrap().to_string();
        enroll(&argv(&format!("--fab-seed 5 --out {table_s}"))).expect("enroll");
        attest(&argv(&format!("--table {table_s} --fab-seed 5 --rounds 1024"))).expect("attest");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn characterize_runs() {
        characterize(&argv("--chips 2 --challenges 30")).expect("characterize");
        characterize(&argv("--chips 2 --challenges 30 --threads 2 --seed 7")).expect("characterize threaded");
        assert!(characterize(&argv("--chips 1")).is_err(), "needs 2 chips");
        assert!(characterize(&argv("--threads 0")).is_err(), "zero threads refused");
    }

    #[test]
    fn dot_writes_file() {
        let dir = std::env::temp_dir().join(format!("pufatt-cli-dot-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("g.dot");
        dot(&argv(&format!("--width 4 --out {}", out.to_str().unwrap()))).expect("dot");
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.starts_with("digraph"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn profile_runs_each_program() {
        for p in ["fibonacci", "memcpy", "checksum", "sort"] {
            profile(&argv(&format!("--program {p}"))).expect(p);
        }
        assert!(profile(&argv("--program nope")).is_err());
    }

    #[test]
    fn fleet_runs_a_small_campaign() {
        fleet(&argv("--devices 8 --workers 2 --sessions 1 --profile fpga16 --rounds 128 --tamper 0.25"))
            .expect("fleet");
        fleet(&argv("--devices 4 --threads 2 --sessions 1 --profile fpga16 --rounds 128")).expect("fleet threads");
        // `--fail-fast` only changes what happens on a storage failure; a
        // healthy campaign under the flag is byte-for-byte the same run.
        fleet(&argv("--devices 4 --workers 2 --sessions 1 --profile fpga16 --rounds 128 --fail-fast"))
            .expect("fleet fail-fast");
        assert!(fleet(&argv("--devices 0")).is_err(), "empty fleets are refused");
        assert!(fleet(&argv("--bogus 1")).is_err(), "unknown flags are refused");
    }

    #[test]
    fn fleet_persists_and_resumes_a_state_dir() {
        let dir = std::env::temp_dir().join(format!("pufatt-cli-state-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let base = format!(
            "--devices 4 --workers 2 --sessions 1 --profile fpga16 --rounds 128 --state-dir {}",
            dir.to_str().unwrap()
        );
        fleet(&argv(&base)).expect("fresh persistent campaign");
        assert!(dir.join("manifest.bin").is_file(), "shard manifest written");
        assert!(dir.join("shard-000").join("snapshot.bin").is_file(), "per-shard snapshot written");
        assert!(fleet(&argv(&base)).is_err(), "occupied state dir refused without --resume");
        fleet(&argv(&format!("{base} --resume"))).expect("resume of a finished campaign");
        assert!(
            fleet(&argv(&format!("{base} --seed 99 --resume"))).is_err(),
            "resume under a different configuration refused"
        );
        assert!(fleet(&argv("--devices 4 --resume")).is_err(), "--resume requires --state-dir");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fleet_enrolls_devices_online() {
        let dir = std::env::temp_dir().join(format!("pufatt-cli-online-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let base = format!(
            "--devices 3 --workers 2 --sessions 1 --profile fpga16 --rounds 128 --state-dir {}",
            dir.to_str().unwrap()
        );
        fleet(&argv(&format!("{base} --online-enroll 2 --commit-interval 2"))).expect("online admissions");
        // Re-admitting the same ids on resume is an idempotent no-op.
        fleet(&argv(&format!("{base} --online-enroll 2 --resume"))).expect("resume with same admissions");
        assert!(fleet(&argv("--devices 3 --online-enroll 2")).is_err(), "--online-enroll requires --state-dir");
        assert!(
            fleet(&argv(&format!("{base} --commit-interval -1 --resume"))).is_err(),
            "negative commit intervals are refused"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn attest_accepts_chaos_flags() {
        let dir = std::env::temp_dir().join(format!("pufatt-cli-chaos-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let table = dir.join("dev.puft");
        let table_s = table.to_str().unwrap().to_string();
        enroll(&argv(&format!("--fab-seed 5 --out {table_s}"))).expect("enroll");
        attest(&argv(&format!(
            "--table {table_s} --fab-seed 5 --rounds 512 --fault-plan drop=0.25 --channel lan --retries 6"
        )))
        .expect("chaos attest survives moderate drops");
        assert!(
            attest(&argv(&format!("--table {table_s} --fab-seed 5 --fault-plan bogus=1"))).is_err(),
            "bad fault plans are refused"
        );
        assert!(
            attest(&argv(&format!("--table {table_s} --fab-seed 5 --channel carrier-pigeon"))).is_err(),
            "unknown channel presets are refused"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fleet_runs_a_chaos_campaign() {
        fleet(&argv(
            "--devices 6 --workers 2 --sessions 2 --profile fpga16 --rounds 128 \
             --fault-plan drop=0.8 --flaky 0.5 --retries 2",
        ))
        .expect("chaos fleet");
        assert!(fleet(&argv("--devices 4 --fault-plan bogus=1")).is_err(), "bad plans are refused");
        assert!(fleet(&argv("--devices 4 --fault-plan drop=0.5 --flaky 2.0")).is_err(), "fractions are bounded");
    }

    #[test]
    fn noise_sweep_prints_the_boundary_table() {
        noise_sweep(&argv("--trials 10 --sessions 2 --max-weight 8")).expect("noise sweep");
        assert!(noise_sweep(&argv("--bogus 1")).is_err(), "unknown flags are refused");
    }
}
