//! `pufatt serve` / `pufatt loadgen` — attestation as a service from the
//! command line.
//!
//! `serve` binds a socket (UDS or loopback TCP) and fronts the fleet
//! engine with the full campaign flag set; it runs until a wire
//! `Shutdown` arrives, then drains gracefully and prints the same
//! snapshot `fleet` would. `loadgen` drives a running server with
//! thousands of concurrent simulated devices and reports sessions/sec
//! and latency percentiles — optionally appending a JSON row for the
//! bench artefacts, and optionally shutting the server down when done
//! (which is how the two commands compose into one scripted e2e run).

use crate::args::Args;
use crate::commands::{campaign_config, print_campaign_banner, CAMPAIGN_BOOL_KEYS, CAMPAIGN_VALUE_KEYS};
use pufatt_transport::client::Client;
use pufatt_transport::loadgen::{run_loadgen, LoadgenConfig};
use pufatt_transport::message::{Request, Response};
use pufatt_transport::server::{Server, ServerConfig};
use pufatt_transport::Endpoint;

pub fn serve(argv: &[String]) -> Result<(), String> {
    let mut value_keys = CAMPAIGN_VALUE_KEYS.to_vec();
    value_keys.extend_from_slice(&[
        "listen",
        "state-dir",
        "max-conns",
        "read-timeout-ms",
        "write-timeout-ms",
        "rate-limit",
        "rate-burst",
        "dispatch-shards",
        "queue-depth",
        "drain-grace-ms",
    ]);
    let args = Args::parse(argv, &value_keys, CAMPAIGN_BOOL_KEYS)?;
    let cfg = campaign_config(&args)?;
    let endpoint = Endpoint::parse(args.require("listen")?);
    let defaults = ServerConfig::default();
    let server_cfg = ServerConfig {
        max_connections: args.num_or("max-conns", defaults.max_connections)?,
        read_timeout_ms: args.num_or("read-timeout-ms", defaults.read_timeout_ms)?,
        write_timeout_ms: args.num_or("write-timeout-ms", defaults.write_timeout_ms)?,
        rate_limit_per_s: args.num_or("rate-limit", defaults.rate_limit_per_s)?,
        rate_burst: args.num_or("rate-burst", defaults.rate_burst)?,
        dispatch_shards: args.num_or("dispatch-shards", defaults.dispatch_shards)?,
        queue_depth: args.num_or("queue-depth", defaults.queue_depth)?,
        drain_grace_ms: args.num_or("drain-grace-ms", defaults.drain_grace_ms)?,
        ..defaults
    };
    print_campaign_banner(&cfg);
    let state_dir = args.get_or("state-dir", "");
    let server = if state_dir.is_empty() {
        Server::start(&endpoint, cfg, server_cfg)
    } else {
        let dir = std::path::Path::new(state_dir);
        println!(
            "state: journaling to {}, group commit every {:.1} ms (prior state is restored, new enrollments admitted online)",
            dir.display(),
            cfg.commit_interval_s * 1e3
        );
        let journaled = pufatt_fleet::open_state_dir(dir, cfg.history_capacity)
            .and_then(|store| pufatt_fleet::FleetService::with_journal(cfg, store))
            .map_err(|e| e.to_string())?;
        Server::start_with_service(&endpoint, std::sync::Arc::new(journaled), server_cfg)
    }
    .map_err(|e| e.to_string())?;
    println!("serving on {} (send a wire Shutdown to drain)", server.endpoint());
    while !server.is_draining() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    println!("drain requested; completing in-flight sessions");
    let service = std::sync::Arc::clone(server.service());
    let report = server.finish();
    if let Err(e) = service.checkpoint() {
        // A sick shard makes the final checkpoint fail by design; the
        // snapshot and per-shard health below still tell the whole story.
        println!("final checkpoint incomplete: {e}");
    }
    print!("{}", report.snapshot);
    if let Some(stats) = service.store_stats() {
        println!("store: {stats}");
    }
    let t = &report.transport;
    println!(
        "transport: {} conn(s) served, {} shed, {} request(s), {} busy (queue {}, rate {}), \
         {} malformed, {} frame error(s), {} idle timeout(s), {} aborted session(s), {} panicked job(s)",
        t.connections_served,
        t.connections_shed,
        t.requests,
        t.busy_queue + t.busy_rate,
        t.busy_queue,
        t.busy_rate,
        t.malformed,
        t.frame_errors,
        t.idle_timeouts,
        t.sessions_aborted,
        report.panicked_jobs,
    );
    Ok(())
}

pub fn loadgen(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(
        argv,
        &[
            "connect",
            "devices",
            "sessions",
            "connections",
            "window",
            "read-timeout-ms",
            "write-timeout-ms",
            "json",
            "label",
        ],
        &["shutdown"],
    )?;
    let endpoint = Endpoint::parse(args.require("connect")?);
    let defaults = LoadgenConfig::default();
    let cfg = LoadgenConfig {
        endpoint: endpoint.clone(),
        devices: args.num_or("devices", defaults.devices)?,
        sessions_per_device: args.num_or("sessions", defaults.sessions_per_device)?,
        connections: args.num_or("connections", defaults.connections)?,
        window: args.num_or("window", defaults.window)?,
        read_timeout_ms: args.num_or("read-timeout-ms", defaults.read_timeout_ms)?,
        write_timeout_ms: args.num_or("write-timeout-ms", defaults.write_timeout_ms)?,
        ..defaults
    };
    let concurrent = (cfg.connections * cfg.window) as u64;
    println!(
        "loadgen: {} device(s) x {} session(s) over {} connection(s), window {} ({} concurrent devices)",
        cfg.devices, cfg.sessions_per_device, cfg.connections, cfg.window, concurrent
    );
    let report = run_loadgen(&cfg).map_err(|e| e.to_string())?;
    println!(
        "completed {} device(s) ({} errored), {} session(s) ({} accepted, {} refused), {} busy retries",
        report.devices_completed,
        report.devices_errored,
        report.sessions_completed,
        report.sessions_accepted,
        report.sessions_refused,
        report.busy_retries,
    );
    println!(
        "wall {:.2} s, {:.0} sessions/s, latency p50 {} us / p90 {} us / p99 {} us / max {} us",
        report.wall_s, report.sessions_per_s, report.p50_us, report.p90_us, report.p99_us, report.max_us
    );
    if let Ok(json_path) = args.require("json") {
        let row = report.json_object(args.get_or("label", "loadgen"), concurrent);
        std::fs::write(json_path, format!("{row}\n")).map_err(|e| format!("write {json_path}: {e}"))?;
        println!("wrote {json_path}");
    }
    if args.has("shutdown") {
        let mut client = Client::connect(&endpoint, 10_000, 10_000).map_err(|e| e.to_string())?;
        match client.call(&Request::Shutdown).map_err(|e| e.to_string())? {
            Response::ShutdownAck => println!("server draining"),
            other => return Err(format!("unexpected shutdown reply: {other:?}")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    /// The scripted composition the docs promise: serve in a thread,
    /// loadgen against it with --shutdown, server drains and exits.
    #[test]
    fn serve_and_loadgen_compose_over_a_socket() {
        let dir = std::env::temp_dir().join(format!("pufatt-cli-net-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("serve.sock");
        let listen = format!("uds:{}", sock.display());
        let serve_args: Vec<String> = [
            "--listen",
            &listen,
            "--devices",
            "6",
            "--sessions",
            "1",
            "--workers",
            "2",
            "--profile",
            "fpga16",
            "--rounds",
            "128",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let handle = std::thread::spawn(move || serve(&serve_args));
        // Wait for the socket to come up.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        while !sock.exists() && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let json = dir.join("bench.json");
        let loadgen_args: Vec<String> = [
            "--connect",
            &listen,
            "--devices",
            "6",
            "--sessions",
            "1",
            "--connections",
            "2",
            "--window",
            "4",
            "--json",
            json.to_str().unwrap(),
            "--shutdown",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        loadgen(&loadgen_args).expect("loadgen succeeds");
        handle.join().expect("serve thread").expect("serve exits cleanly");
        let row = std::fs::read_to_string(&json).unwrap();
        assert!(row.contains("\"sessions_completed\":6"), "bench row records the sessions: {row}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `serve --state-dir` journals the fleet and a second server on the
    /// same directory restores it: the restart sees already-enrolled
    /// devices and keeps serving sessions from where the first stopped.
    #[test]
    fn serve_journals_and_restores_state() {
        let dir = std::env::temp_dir().join(format!("pufatt-cli-net-journal-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let state = dir.join("state");
        for round in 0..2 {
            let sock = dir.join(format!("serve-{round}.sock"));
            let listen = format!("uds:{}", sock.display());
            let serve_args: Vec<String> = [
                "--listen",
                &listen,
                "--state-dir",
                state.to_str().unwrap(),
                "--commit-interval",
                "2",
                "--devices",
                "4",
                "--sessions",
                "2",
                "--workers",
                "2",
                "--profile",
                "fpga16",
                "--rounds",
                "128",
            ]
            .iter()
            .map(ToString::to_string)
            .collect();
            let handle = std::thread::spawn(move || serve(&serve_args));
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
            while !sock.exists() && std::time::Instant::now() < deadline {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            let loadgen_args: Vec<String> = [
                "--connect",
                &listen,
                "--devices",
                "4",
                "--sessions",
                "1",
                "--connections",
                "2",
                "--window",
                "2",
                "--shutdown",
            ]
            .iter()
            .map(ToString::to_string)
            .collect();
            loadgen(&loadgen_args).expect("loadgen succeeds");
            handle.join().expect("serve thread").expect("serve exits cleanly");
            assert!(state.join("manifest.bin").is_file(), "journal written");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn loadgen_requires_a_target() {
        assert!(loadgen(&[]).unwrap_err().contains("--connect"));
        assert!(serve(&[]).unwrap_err().contains("--listen"));
    }
}
