//! `pufatt` — command-line toolkit for the PUFatt reproduction.
//!
//! ```text
//! pufatt enroll       --profile paper32 --fab-seed 42 --out device.puft
//! pufatt attest       --table device.puft --fab-seed 42 [--malware] [--overclock 4.0]
//! pufatt attest       --table device.puft --fault-plan drop=0.2,flip=0.01 --channel sensor
//! pufatt characterize --chips 4 --challenges 400 --threads 8
//! pufatt dot          --width 8 --out alupuf.dot [--chip-seed 1]
//! pufatt profile      --program fibonacci
//! pufatt fleet        --devices 256 --workers 8 [--fault-plan drop=0.5 --flaky 0.25]
//! pufatt serve        --listen uds:/tmp/pufatt.sock --devices 256
//! pufatt loadgen      --connect uds:/tmp/pufatt.sock --connections 8 --shutdown
//! pufatt noise-sweep  --trials 200 --sessions 10 --max-weight 10
//! ```
//!
//! Everything is simulation: `enroll` manufactures a chip (deterministic in
//! `--fab-seed`) and exports its delay table; `attest` re-creates the same
//! chip as the prover and uses the exported table as the verifier — the
//! two halves of Fig. 2 in one process.

mod args;
mod commands;
mod net;

use std::process::ExitCode;

const USAGE: &str = "pufatt <command> [flags]

commands:
  enroll        manufacture a device and export its delay table
                  --profile paper32|fpga16   (default paper32)
                  --fab-seed <u64>           (default 42)
                  --out <path>               (default device.puft)
  attest        run one attestation session against an exported table
                  --table <path>             (required)
                  --profile paper32|fpga16   (default paper32)
                  --fab-seed <u64>           (default 42; prover chip)
                  --rounds <u32>             (default 2048)
                  --malware                  (infect the attested region)
                  --overclock <f64>          (memory-copy attack at factor)
                  --fault-plan <spec>        (chaos mode: flip=0.01,burst=9@4,
                                              drop=0.1,dup=0.02,reorder=0.05,
                                              jitter-ms=2,skew=1.05,
                                              overclock=2,tamper=1)
                  --channel <spec>           (sensor|lan|satellite, with
                                              drop=/dup=/reorder=/jitter-ms=
                                              overrides)
                  --retries <n>              (default 3; chaos-mode attempts)
                  --seed <u64>               (default 0xC11; session RNG)
  characterize  PUF quality metrics for a chip batch (parallel batch engine)
                  --profile paper32|fpga16   --chips <n>  --challenges <n>
                  --threads <n>              (default: all cores; results
                                              identical for any thread count)
                  --seed <u64>               (default 0xC4A2)
  dot           export the ALU PUF netlist as Graphviz
                  --width <n>  --out <path>  [--chip-seed <u64>]
  profile       run a built-in PE32 program with cycle attribution
                  --program fibonacci|memcpy|checksum|sort
  fleet         run a concurrent fleet-scale attestation campaign
                  --devices <n>              (default 64)
                  --workers <n>              (default 4)
                  --threads <n>              (alias for --workers)
                  --shards <n>               (default 16)
                  --sessions <n>             (default 2; per device)
                  --seed <u64>               (default 0xF1EE7)
                  --tamper <f64>             (default 0.125; compromised fraction)
                  --profile paper32|fpga16   (default paper32)
                  --rounds <u32>             (default 192)
                  --region-bits <u32>        (default 8)
                  --retries <n>              (default 3; attempts per session)
                  --timeout-ms <f64>         (default 1000; simulated)
                  --history <n>              (default 64; per-device records)
                  --fault-plan <spec>        (chaos mode; same syntax as attest)
                  --flaky <f64>              (default 0.25; flaky fraction,
                                              only with --fault-plan)
                  --state-dir <path>         (persist the campaign: WAL +
                                              snapshots; crash-safe)
                  --resume                   (continue an interrupted campaign
                                              from --state-dir; verdicts match
                                              an uninterrupted run)
  serve         expose the fleet engine on a socket (attestation as a service)
                  --listen <endpoint>        (required; uds:/path or tcp:host:port)
                  --max-conns <n>            (default 256; excess sheds Busy)
                  --read-timeout-ms <n>      (default 5000; idle cutoff)
                  --write-timeout-ms <n>     (default 5000)
                  --rate-limit <f64>         (default 0 = off; requests/s)
                  --rate-burst <n>           (default 64; token-bucket depth)
                  --dispatch-shards <n>      (default: all cores; worker pools)
                  --queue-depth <n>          (default 64; per-pool backlog)
                  --drain-grace-ms <n>       (default 5000; shutdown grace)
                  plus every fleet campaign flag (--devices, --seed, ...);
                  runs until a wire Shutdown arrives, then drains and
                  prints the campaign snapshot
  loadgen       drive a running server with concurrent simulated devices
                  --connect <endpoint>       (required; matches --listen)
                  --devices <n>              (default 64)
                  --sessions <n>             (default 2; per device)
                  --connections <n>          (default 4; client sockets)
                  --window <n>               (default 16; in-flight devices
                                              per connection)
                  --read-timeout-ms <n>      (default 30000)
                  --write-timeout-ms <n>     (default 30000)
                  --json <path>              (write a BENCH-style report row)
                  --label <name>             (row label; default loadgen)
                  --shutdown                 (send wire Shutdown when done)
  noise-sweep   false-negative rate vs. injected PUF error weight (paper 4.1)
                  --seed <u64>               (default 42)
                  --trials <n>               (default 200; extractor trials)
                  --sessions <n>             (default 10; sessions per weight)
                  --max-weight <n>           (default 10; sweep 0..=N bits)
  analyze       static analysis: netlist verifier, SWATT program verifier,
                secret-taint lint (lint codes NET*/SWP*/TNT*)
                  --deny                     (exit nonzero on any finding; CI)
                  --lints                    (list the lint catalogue)
                  --src-root <path>          (repo root for the taint scan;
                                              default .)
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "enroll" => commands::enroll(rest),
        "attest" => commands::attest(rest),
        "characterize" => commands::characterize(rest),
        "dot" => commands::dot(rest),
        "profile" => commands::profile(rest),
        "fleet" => commands::fleet(rest),
        "serve" => net::serve(rest),
        "loadgen" => net::loadgen(rest),
        "noise-sweep" => commands::noise_sweep(rest),
        "analyze" => commands::analyze(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
