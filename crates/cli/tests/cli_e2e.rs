//! End-to-end tests of the `pufatt` binary via the actual executable.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use std::process::Command;

fn pufatt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pufatt"))
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pufatt-e2e-{}-{name}", std::process::id()))
}

#[test]
fn help_prints_usage() {
    let out = pufatt().arg("help").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("enroll"));
    assert!(text.contains("attest"));
}

#[test]
fn no_args_fails_with_usage() {
    let out = pufatt().output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("commands:"));
}

#[test]
fn unknown_command_fails() {
    let out = pufatt().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn enroll_attest_happy_path_and_attacks() {
    let table = temp_path("dev.puft");
    let table_s = table.to_str().expect("utf8 path");

    let out = pufatt()
        .args(["enroll", "--fab-seed", "7", "--out", table_s])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(table.exists());

    // Honest device: accepted.
    let out = pufatt()
        .args(["attest", "--table", table_s, "--fab-seed", "7", "--rounds", "1024"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ACCEPT"), "{text}");

    // Infected device: rejected.
    let out = pufatt()
        .args([
            "attest",
            "--table",
            table_s,
            "--fab-seed",
            "7",
            "--rounds",
            "1024",
            "--malware",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("REJECT"));

    // Wrong chip (impersonation): rejected.
    let out = pufatt()
        .args(["attest", "--table", table_s, "--fab-seed", "8", "--rounds", "1024"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("REJECT"));

    std::fs::remove_file(&table).ok();
}

#[test]
fn attest_rejects_corrupt_table() {
    let table = temp_path("corrupt.puft");
    std::fs::write(&table, b"not a delay table").expect("write");
    let out = pufatt()
        .args(["attest", "--table", table.to_str().expect("utf8"), "--rounds", "1024"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("magic"));
    std::fs::remove_file(&table).ok();
}

#[test]
fn dot_and_characterize_and_profile() {
    let dot = temp_path("g.dot");
    let out = pufatt()
        .args(["dot", "--width", "4", "--out", dot.to_str().expect("utf8")])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert!(std::fs::read_to_string(&dot).expect("dot written").starts_with("digraph"));
    std::fs::remove_file(&dot).ok();

    let out = pufatt()
        .args(["characterize", "--chips", "2", "--challenges", "40"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("uniqueness"));

    let out = pufatt().args(["profile", "--program", "memcpy"]).output().expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("execution profile"));
}
