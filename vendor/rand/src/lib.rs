//! Offline stand-in for the `rand` 0.8 API subset this workspace uses.
//!
//! The build container has no network access to crates.io, so the external
//! `rand` crate cannot be fetched. This vendored crate re-implements exactly
//! the surface the workspace consumes — [`RngCore`], [`Rng`] (`gen`,
//! `gen_range`, `gen_bool`), [`SeedableRng`] (including `seed_from_u64`'s
//! SplitMix64 seed expansion), `distributions::{Distribution, Standard}`
//! and `seq::SliceRandom` — with the same method signatures, so swapping the
//! real crate back in is a one-line manifest change.
//!
//! Statistical quality matters here (the PUF experiments assert Hamming
//! distance distributions and Box–Muller gaussians), so integer generation
//! is delegated to the backing generator ([`rand_chacha`'s ChaCha8] in
//! practice) and floats use the standard 53-bit mantissa construction.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: uniform machine words.
pub trait RngCore {
    /// Next uniform `u32`.
    fn next_u32(&mut self) -> u32;
    /// Next uniform `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// SplitMix64 step — the seed-expansion function `seed_from_u64` uses
/// (matching rand_core's documented behaviour).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 and builds the
    /// generator — the deterministic convenience every test here leans on.
    fn seed_from_u64(state: u64) -> Self {
        let mut s = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut s).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod distributions {
    //! The `Standard` distribution: full-range uniform values.

    use super::RngCore;

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform over the whole domain of the output type (unit-interval
    /// uniform for floats).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
}

use distributions::{Distribution, Standard};

/// A type `gen_range` can produce.
pub trait SampleUniform: Sized {
    /// Uniform draw in `[low, high)` (`high` inclusive when `inclusive`).
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self {
                let lo = low as i128;
                let hi = high as i128;
                let span = (hi - lo) + i128::from(inclusive);
                assert!(span > 0, "gen_range: empty range");
                // Widening modulo: bias is < 2^-64 for every span used here.
                let offset = (rng.next_u64() as i128) % span;
                (lo + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, _inclusive: bool) -> Self {
        assert!(high > low, "gen_range: empty range");
        let unit: f64 = Standard.sample(rng);
        low + unit * (high - low)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// User-facing generator methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of the inferred type.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Uniform value in `range` (`a..b` or `a..=b`).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        self.gen::<f64>() < p
    }

    /// Draws a value from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Convenience generators.

    use super::{splitmix64, RngCore};
    use std::cell::Cell;

    std::thread_local! {
        static THREAD_STATE: Cell<u64> = const { Cell::new(0) };
    }

    /// A per-thread generator (SplitMix64 seeded from the thread's first
    /// use time — non-reproducible by design, like the real crate).
    #[derive(Debug, Clone, Default)]
    pub struct ThreadRng;

    impl RngCore for ThreadRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            THREAD_STATE.with(|state| {
                let mut s = state.get();
                if s == 0 {
                    s = std::time::UNIX_EPOCH
                        .elapsed()
                        .map(|d| d.as_nanos() as u64)
                        .unwrap_or(0x9E37_79B9)
                        | 1;
                }
                let out = splitmix64(&mut s);
                state.set(s);
                out
            })
        }
    }
}

/// The per-thread generator.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng
}

pub mod seq {
    //! Slice sampling helpers (`SliceRandom`).

    use super::{Rng, RngCore};

    /// Random selection over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// `amount` distinct elements (fewer if the slice is shorter), in
        /// random order.
        fn choose_multiple<R: RngCore + ?Sized>(&self, rng: &mut R, amount: usize) -> std::vec::IntoIter<&Self::Item>;

        /// One uniformly chosen element, or `None` for an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose_multiple<R: RngCore + ?Sized>(&self, rng: &mut R, amount: usize) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index vector: O(len) setup,
            // exact distinct sampling.
            let mut indices: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..indices.len());
                indices.swap(i, j);
            }
            indices[..amount].iter().map(|&i| &self[i]).collect::<Vec<_>>().into_iter()
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    /// A tiny deterministic generator for exercising the traits without a
    /// dependency on `rand_chacha`.
    struct Mix(u64);

    impl RngCore for Mix {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.0)
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Mix(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u32 = rng.gen_range(0..=7);
            assert!(w <= 7);
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let s: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = Mix(2);
        let mut sum = 0.0;
        for _ in 0..4096 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 4096.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn choose_multiple_is_distinct() {
        let mut rng = Mix(3);
        let data: Vec<usize> = (0..32).collect();
        let picked: Vec<usize> = data.choose_multiple(&mut rng, 7).copied().collect();
        assert_eq!(picked.len(), 7);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 7, "duplicates in {picked:?}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = Mix(4);
        let mut data: Vec<u32> = (0..64).collect();
        data.shuffle(&mut rng);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(data, sorted, "64 elements should not shuffle to identity");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Mix(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
