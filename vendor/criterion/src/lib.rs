//! Offline stand-in for `criterion`: a small wall-clock micro-benchmark
//! harness with the `criterion_group!`/`criterion_main!`/`bench_function`
//! shape the workspace's perf benches use.
//!
//! No statistics engine — each benchmark is timed over `sample_size`
//! batches after a short warm-up and reported as mean/min ns per iteration.
//! When run under `cargo test` (harness-less bench targets receive
//! `--test`), benchmarks execute one iteration each, just like the real
//! crate's smoke mode.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Batch sizing hint for [`Bencher::iter_batched`] (advisory here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs; batches of many iterations.
    SmallInput,
    /// Large inputs; smaller batches.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Timing collector handed to each benchmark closure.
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    smoke_test: bool,
    /// Mean and min ns/iter of the last routine, if any ran.
    result: Option<(f64, f64)>,
}

impl Bencher {
    /// Times `routine` back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke_test {
            black_box(routine());
            self.result = None;
            return;
        }
        // Warm-up.
        for _ in 0..self.iters_per_sample.min(3) {
            black_box(routine());
        }
        let mut mean_sum = 0.0;
        let mut min_ns = f64::INFINITY;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            let ns = duration_ns(start.elapsed()) / self.iters_per_sample as f64;
            mean_sum += ns;
            min_ns = min_ns.min(ns);
        }
        self.result = Some((mean_sum / self.samples as f64, min_ns));
    }

    /// Times `routine` over fresh inputs from `setup` (setup excluded from
    /// timing).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.smoke_test {
            black_box(routine(setup()));
            self.result = None;
            return;
        }
        for _ in 0..self.iters_per_sample.min(3) {
            black_box(routine(setup()));
        }
        let mut mean_sum = 0.0;
        let mut min_ns = f64::INFINITY;
        for _ in 0..self.samples {
            let inputs: Vec<I> = (0..self.iters_per_sample).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let ns = duration_ns(start.elapsed()) / self.iters_per_sample as f64;
            mean_sum += ns;
            min_ns = min_ns.min(ns);
        }
        self.result = Some((mean_sum / self.samples as f64, min_ns));
    }
}

fn duration_ns(d: Duration) -> f64 {
    d.as_secs() as f64 * 1e9 + d.subsec_nanos() as f64
}

/// Benchmark registry and configuration.
pub struct Criterion {
    sample_size: usize,
    smoke_test: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` invokes harness-less bench binaries with `--test`:
        // run every routine once, fast, like real criterion's test mode.
        let smoke_test = std::env::args().any(|a| a == "--test");
        Criterion { sample_size: 10, smoke_test }
    }
}

impl Criterion {
    /// Sets how many timing samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            // Keep total time bounded: few iterations per sample; the
            // routines benched here run microseconds to milliseconds.
            iters_per_sample: 10,
            samples: self.sample_size,
            smoke_test: self.smoke_test,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some((mean, min)) => println!("{id:<44} mean {:>12}/iter   min {:>12}/iter", fmt(mean), fmt(min)),
            None => println!("{id:<44} ok (smoke test)"),
        }
        self
    }
}

fn fmt(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Groups benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(c: &mut Criterion) {
        c.bench_function("toy/sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        c.bench_function("toy/batched", |b| {
            b.iter_batched(|| vec![1u64; 64], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
        });
    }

    criterion_group!(quick, toy);
    criterion_group! {
        name = configured;
        config = Criterion { sample_size: 2, smoke_test: true };
        targets = toy
    }

    #[test]
    fn groups_run() {
        quick();
        configured();
    }

    #[test]
    fn bencher_records_timing() {
        let mut c = Criterion { sample_size: 3, smoke_test: false };
        let mut saw = 0u64;
        c.bench_function("t", |b| {
            b.iter(|| {
                saw += 1;
                saw
            })
        });
        assert!(saw > 0, "routine must actually run");
    }
}
