//! Offline stand-in for `proptest`: random-input property testing over the
//! API subset this workspace uses (`proptest!`, `any`, range and collection
//! strategies, `prop_oneof!`, `prop_map`, `Just`, `select`).
//!
//! Semantics deliberately kept from the real crate:
//!
//! * strategies are composable value generators ([`Strategy::prop_map`],
//!   tuples, [`collection::vec`], [`collection::btree_set`]);
//! * each `#[test]` inside [`proptest!`] runs many cases (default 64,
//!   `PROPTEST_CASES` overrides) with a generator seeded from the test
//!   name, so failures reproduce deterministically;
//! * `prop_assert*` report the failing case.
//!
//! Shrinking is intentionally absent — a failing case prints its inputs via
//! the panic message instead.

use rand::Rng;
use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// The deterministic generator driving every strategy.
pub type TestRng = rand_chacha::ChaCha8Rng;

/// Number of cases each property runs (`PROPTEST_CASES` overrides).
pub fn case_count() -> usize {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// Seeds the per-test generator from the test's name (FNV-1a) so every
/// property is deterministic yet decorrelated from its neighbours.
pub fn rng_for(test_name: &str) -> TestRng {
    use rand::SeedableRng;
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x1000_0000_01B3);
    }
    TestRng::seed_from_u64(hash)
}

/// A failed test case (the error side of a property body using `?`).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fails the current case with a reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }

    /// Rejects the current case (treated as failure here — no local
    /// rejection budget).
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// A composable generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed to mix heterogeneous arms in
    /// [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

trait ErasedStrategy<V> {
    fn generate_erased(&self, rng: &mut TestRng) -> V;
    fn clone_box(&self) -> Box<dyn ErasedStrategy<V>>;
}

impl<S> ErasedStrategy<S::Value> for S
where
    S: Strategy + Clone + 'static,
{
    fn generate_erased(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }

    fn clone_box(&self) -> Box<dyn ErasedStrategy<S::Value>> {
        Box::new(self.clone())
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn ErasedStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone_box())
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_erased(rng)
    }
}

/// Uniform choice between alternative strategies (the engine behind
/// [`prop_oneof!`]).
#[derive(Clone)]
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let arm = rng.gen_range(0..self.0.len());
        self.0[arm].generate(rng)
    }
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen::<f64>()
    }
}

/// Strategy for [`Arbitrary`] types; build with [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..=<$t>::MAX)
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Floats get only the bounded forms (`RangeFrom<f64>` has no uniform
// distribution to draw from).
impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident => $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(S0 => 0);
impl_tuple_strategy!(S0 => 0, S1 => 1);
impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2);
impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3);
impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4);
impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5);

/// Collection size specifications: a fixed size or a size range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi_inclusive)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_inclusive: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::*;

    /// `Vec` of values from `element`, sized by `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Vector strategy; see [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet` of *distinct* values from `element`, sized by `size`
    /// (best effort: gives up growing after a bounded number of duplicate
    /// draws, like the real crate's rejection budget).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// Set strategy; see [`btree_set`].
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.draw(rng);
            let mut out = BTreeSet::new();
            let mut misses = 0;
            while out.len() < target && misses < 1000 {
                if !out.insert(self.element.generate(rng)) {
                    misses += 1;
                }
            }
            out
        }
    }
}

pub mod sample {
    //! Sampling strategies over explicit value lists.

    use super::*;

    /// Uniform choice from a non-empty vector.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select(options)
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }
}

/// Declares property tests: each function runs [`case_count`] random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut rng = $crate::rng_for(stringify!($name));
            for case in 0..$crate::case_count() {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                // The closure exists so `?` and `prop_assume!` can early-
                // return from the case body without leaving the test fn.
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property `{}` failed at case {}: {}", stringify!($name), case, e);
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// Skips the current case when its inputs don't satisfy a precondition
/// (the case counts as passed — no rejection budget here).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice between heterogeneous strategy arms of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

pub mod prelude {
    //! Everything a property-test file needs.

    pub use crate::collection;
    pub use crate::sample;
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, Strategy, TestCaseError, TestRng, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// The `prop::` module path (`prop::collection::vec`, …) as the real
    /// crate exposes it.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Generated values respect their range strategies.
        #[test]
        fn ranges_hold(x in 3u32..17, y in 0usize..=7, z in 250u8..) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 7);
            prop_assert!(z >= 250);
        }

        /// Mapping and tuples compose.
        #[test]
        fn map_and_tuples(pair in (0u8..4, any::<u16>()).prop_map(|(a, b)| (a as u32, b))) {
            prop_assert!(pair.0 < 4);
        }

        /// Collections hit their size specifications; sets are distinct.
        #[test]
        fn collections_sized(v in collection::vec(any::<u32>(), 8), s in collection::btree_set(0usize..32, 0..=7)) {
            prop_assert_eq!(v.len(), 8);
            prop_assert!(s.len() <= 7);
        }

        /// prop_oneof and select cover their arms.
        #[test]
        fn oneof_selects(x in prop_oneof![Just(1u32), Just(2u32), (10u32..20).boxed()]) {
            prop_assert!(x == 1 || x == 2 || (10..20).contains(&x));
        }

        /// `?` works in property bodies.
        #[test]
        fn question_mark_propagates(x in any::<u32>()) {
            let ok: Result<u32, TestCaseError> = Ok(x);
            let y = ok?;
            prop_assert_eq!(x, y);
        }
    }

    #[test]
    fn rng_for_is_deterministic_per_name() {
        use rand::RngCore;
        assert_eq!(rng_for("a").next_u64(), rng_for("a").next_u64());
        assert_ne!(rng_for("a").next_u64(), rng_for("b").next_u64());
    }

    use crate::rng_for;
}
