//! Offline stand-in for `rand_chacha`: a faithful ChaCha8 keystream
//! generator behind the [`rand::RngCore`]/[`rand::SeedableRng`] traits.
//!
//! The workspace's experiments assert statistical properties of PUF
//! responses (inter-chip Hamming distance near 50 %, Box–Muller gaussian
//! moments), so the generator must be cryptographic-quality — this is the
//! real ChaCha permutation with 8 rounds, not a toy LCG. Stream positions
//! are *not* bit-compatible with the upstream crate (no one here depends on
//! the exact keystream, only on determinism per seed), which is what makes
//! the offline swap safe.

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

/// One ChaCha quarter round.
#[inline]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The ChaCha block function with `rounds` rounds.
fn chacha_block(key: &[u32; 8], counter: u64, rounds: u32) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CHACHA_CONSTANTS);
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    // state[14..16]: zero nonce (single stream per seed).
    let input = state;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter(&mut state, 0, 4, 8, 12);
        quarter(&mut state, 1, 5, 9, 13);
        quarter(&mut state, 2, 6, 10, 14);
        quarter(&mut state, 3, 7, 11, 15);
        // Diagonal round.
        quarter(&mut state, 0, 5, 10, 15);
        quarter(&mut state, 1, 6, 11, 12);
        quarter(&mut state, 2, 7, 8, 13);
        quarter(&mut state, 3, 4, 9, 14);
    }
    for (word, inp) in state.iter_mut().zip(&input) {
        *word = word.wrapping_add(*inp);
    }
    state
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            block: [u32; 16],
            cursor: usize,
        }

        impl $name {
            fn refill(&mut self) {
                self.block = chacha_block(&self.key, self.counter, $rounds);
                self.counter = self.counter.wrapping_add(1);
                self.cursor = 0;
            }

            /// Keystream position: 32-bit words consumed since `from_seed`.
            ///
            /// A freshly seeded generator reports 0; every `next_u32` call
            /// advances the position by one and every `next_u64` by two, so
            /// the position fully captures the generator's state given its
            /// seed. Feed it back through [`Self::set_word_pos`] to rebuild
            /// an identical stream without replaying the draws.
            pub fn word_pos(&self) -> u64 {
                // `refill` has already advanced `counter` past the block the
                // cursor indexes into, hence the `- 1`. The only state with
                // `cursor == 16` is the transient inside `from_seed`, which
                // is never observable.
                self.counter.wrapping_sub(1).wrapping_mul(16).wrapping_add(self.cursor as u64)
            }

            /// Repositions the keystream to `pos` words past the start, as
            /// reported by [`Self::word_pos`]. O(1): recomputes one ChaCha
            /// block instead of replaying `pos` draws.
            pub fn set_word_pos(&mut self, pos: u64) {
                self.counter = pos / 16;
                self.refill();
                self.cursor = (pos % 16) as usize;
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.cursor == 16 {
                    self.refill();
                }
                let word = self.block[self.cursor];
                self.cursor += 1;
                word
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                hi << 32 | lo
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let key =
                    std::array::from_fn(|i| u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().expect("4 bytes")));
                let mut rng = $name { key, counter: 0, block: [0; 16], cursor: 16 };
                rng.refill();
                rng
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, 8, "ChaCha with 8 rounds — the workspace's workhorse deterministic generator.");
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha20_matches_rfc8439_block_function() {
        // RFC 8439 §2.3.2 test vector, adapted to our zero-nonce layout:
        // with the RFC's key and counter=1, nonce=0, the first output word
        // of the 20-round block must match a locally computed reference of
        // the same permutation. We at least pin the permutation against a
        // known zero-key vector: ChaCha20(key=0, counter=0, nonce=0).
        let block = chacha_block(&[0; 8], 0, 20);
        // First words of the well-known all-zero ChaCha20 keystream.
        assert_eq!(block[0], u32::from_le_bytes([0x76, 0xb8, 0xe0, 0xad]));
        assert_eq!(block[1], u32::from_le_bytes([0xa0, 0xf1, 0x3d, 0x90]));
    }

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn keystream_bits_are_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let ones: u32 = (0..4096).map(|_| rng.next_u64().count_ones()).sum();
        let frac = ones as f64 / (4096.0 * 64.0);
        assert!((frac - 0.5).abs() < 0.01, "bit balance {frac}");
    }

    #[test]
    fn clone_preserves_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        rng.next_u64();
        let mut fork = rng.clone();
        assert_eq!(rng.next_u64(), fork.next_u64());
    }

    #[test]
    fn word_pos_counts_words_consumed() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert_eq!(rng.word_pos(), 0);
        rng.next_u32();
        assert_eq!(rng.word_pos(), 1);
        rng.next_u64();
        assert_eq!(rng.word_pos(), 3);
        // Across a block boundary (16 words per block).
        for _ in 0..20 {
            rng.next_u32();
        }
        assert_eq!(rng.word_pos(), 23);
    }

    #[test]
    fn set_word_pos_round_trips_at_every_offset() {
        for consumed in [0usize, 1, 7, 15, 16, 17, 31, 33, 100] {
            let mut reference = ChaCha8Rng::seed_from_u64(99);
            for _ in 0..consumed {
                reference.next_u32();
            }
            let pos = reference.word_pos();
            assert_eq!(pos, consumed as u64);
            let mut fast = ChaCha8Rng::seed_from_u64(99);
            fast.set_word_pos(pos);
            assert_eq!(fast.word_pos(), pos);
            let a: Vec<u64> = (0..8).map(|_| reference.next_u64()).collect();
            let b: Vec<u64> = (0..8).map(|_| fast.next_u64()).collect();
            assert_eq!(a, b, "fast-forward to {consumed} must rebuild the stream");
        }
    }
}
